// Unified recovery planner + diskless buddy checkpointing.
//
// Unit level: the preference lattice over exhaustive loss patterns (every
// subset of up to 3 grids, partner pairs included) must always produce a
// plan — recover or cleanly degrade, never abort; the buddy placement rule
// must be host-disjoint from the grid and its RC partner; the in-memory
// replica store must be CRC-verified and two-generation.
//
// End-to-end: a loss pattern that violates the paper's RC constraint (grid
// and partner lost together) is recovered via the buddy snapshots with the
// combined-solution error within 1e-10 of a no-failure run, and chaos kills
// at the "buddy.send" boundary still end in exact recovery.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "core/ft_app.hpp"
#include "core/layout.hpp"
#include "ftmpi/runtime.hpp"
#include "recovery/buddy.hpp"
#include "recovery/planner.hpp"
#include "recovery/replication.hpp"

using namespace ftr::core;
using ftr::comb::GridRole;
using ftr::comb::Scheme;
using ftr::comb::Technique;
using ftr::rec::BuddyStore;
using ftr::rec::BuddyTopology;
using ftr::rec::GridFacts;
using ftr::rec::PlannerMode;
using ftr::rec::plan_recovery;
using ftr::rec::RecoveryAction;
using ftr::rec::RecoveryPlan;

namespace {

LayoutConfig small_layout(Technique t) {
  LayoutConfig cfg;
  cfg.scheme = Scheme{6, 3};  // 3 diagonal + 2 lower-diagonal grids
  cfg.technique = t;
  cfg.procs_diagonal = 4;
  cfg.procs_lower = 2;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

AppConfig small_app(Technique t) {
  AppConfig cfg;
  cfg.layout = small_layout(t);
  cfg.timesteps = 24;
  cfg.checkpoints = 2;
  return cfg;
}

ftmpi::Runtime::Options rt_opts() {
  ftmpi::Runtime::Options o;
  o.slots_per_host = 12;
  o.real_time_limit_sec = 120.0;
  return o;
}

std::vector<GridFacts> facts_for(const std::vector<int>& lost, bool complete, bool buddy,
                                 long step = 8) {
  std::vector<GridFacts> f;
  for (int g : lost) {
    GridFacts gf;
    gf.id = g;
    gf.group_complete = complete;
    gf.buddy_available = buddy && complete;
    gf.buddy_step = gf.buddy_available ? step : -1;
    f.push_back(gf);
  }
  return f;
}

double clean_error(Technique t) {
  ftmpi::Runtime rt(rt_opts());
  FtApp app(small_app(t));
  app.launch(rt);
  return rt.get(keys::kErrorL1, -1);
}

}  // namespace

// --- planner units ----------------------------------------------------------

TEST(Planner, LatticePrefersCheapestFeasibleRung) {
  const auto slots =
      ftr::comb::build_grid_slots(Scheme{6, 3}, Technique::ResamplingCopying);
  const Scheme s{6, 3};

  // Partner alive: RC wins even with a buddy snapshot on offer.
  auto plan = plan_recovery(slots, s, 1, PlannerMode::Lattice, facts_for({0}, true, true));
  ASSERT_EQ(plan.entries.size(), 1u);
  EXPECT_EQ(plan.entries[0].action, RecoveryAction::RcCopy);
  EXPECT_EQ(plan.entries[0].partner, ftr::rec::rc_partner(slots, 0).value());
  EXPECT_TRUE(plan.fully_restored());

  // Lower-diagonal grids resample from the finer diagonal.
  for (const auto& slot : slots) {
    if (slot.role != GridRole::LowerDiagonal) continue;
    plan = plan_recovery(slots, s, 1, PlannerMode::Lattice, facts_for({slot.id}, true, true));
    EXPECT_EQ(plan.entries[0].action, RecoveryAction::RcResample);
  }

  // Partner lost too (the paper's fatal RC pattern): the buddy rung takes it.
  const int dup0 = ftr::rec::rc_partner(slots, 0).value();
  plan = plan_recovery(slots, s, 1, PlannerMode::Lattice, facts_for({0, dup0}, true, true));
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_EQ(plan.entries[0].action, RecoveryAction::Buddy);
  EXPECT_EQ(plan.entries[0].step, 8);
  EXPECT_EQ(plan.entries[1].action, RecoveryAction::Buddy);
  EXPECT_TRUE(plan.fully_restored());

  // Same pattern, no buddy generation: the disk rung (CR rollback, or full
  // recompute when the store is empty) still restores every complete group.
  plan = plan_recovery(slots, s, 1, PlannerMode::Lattice, facts_for({0, dup0}, true, false));
  EXPECT_EQ(plan.entries[0].action, RecoveryAction::Disk);
  EXPECT_EQ(plan.entries[1].action, RecoveryAction::Disk);
  EXPECT_TRUE(plan.fully_restored());

  // Incomplete group (shrink-mode): only the GCP/idle rungs remain.
  plan = plan_recovery(slots, s, 1, PlannerMode::Lattice, facts_for({0}, false, false));
  EXPECT_TRUE(plan.entries[0].action == RecoveryAction::Gcp ||
              plan.entries[0].action == RecoveryAction::Idle);
  EXPECT_FALSE(plan.fully_restored());
}

TEST(Planner, ForceModesReproduceSingleTechniqueBehaviour) {
  const auto slots =
      ftr::comb::build_grid_slots(Scheme{6, 3}, Technique::ResamplingCopying);
  const Scheme s{6, 3};
  const int dup0 = ftr::rec::rc_partner(slots, 0).value();

  auto plan = plan_recovery(slots, s, 1, PlannerMode::ForceCr, facts_for({0, 3}, true, true));
  for (const auto& e : plan.entries) EXPECT_EQ(e.action, RecoveryAction::Disk);

  plan = plan_recovery(slots, s, 1, PlannerMode::ForceRc, facts_for({0, 3}, true, true));
  EXPECT_EQ(plan.entries[0].action, RecoveryAction::RcCopy);
  EXPECT_EQ(plan.entries[1].action, RecoveryAction::RcResample);

  // ForceRc on the fatal pattern degrades to GCP instead of crashing — the
  // old assert/abort behaviour is gone.
  plan = plan_recovery(slots, s, 1, PlannerMode::ForceRc, facts_for({0, dup0}, true, true));
  for (const auto& e : plan.entries) {
    EXPECT_TRUE(e.action == RecoveryAction::Gcp || e.action == RecoveryAction::Idle);
  }

  // ForceAc recombines: feasible with the AC layout's extra layers (Gcp),
  // and demoted to Idle when the coefficient problem has no solution (a
  // lost diagonal with no alternate layers to take over).
  const auto ac_slots =
      ftr::comb::build_grid_slots(Scheme{6, 3}, Technique::AlternateCombination, 2);
  plan = plan_recovery(ac_slots, s, 3, PlannerMode::ForceAc, facts_for({1}, true, true));
  EXPECT_EQ(plan.entries[0].action, RecoveryAction::Gcp);
  EXPECT_TRUE(plan.gcp_feasible);
  plan = plan_recovery(slots, s, 1, PlannerMode::ForceAc, facts_for({1}, true, true));
  EXPECT_EQ(plan.entries[0].action, RecoveryAction::Idle);
  EXPECT_FALSE(plan.gcp_feasible);
}

TEST(Planner, ExhaustiveLossSubsetsNeverAbortAndStayConsistent) {
  // Every subset of up to 3 lost grids (partner pairs included), crossed
  // with buddy availability and group completeness, in every mode: the
  // planner must always return a well-formed plan.
  const auto slots =
      ftr::comb::build_grid_slots(Scheme{6, 3}, Technique::ResamplingCopying);
  const Scheme s{6, 3};
  const int n = static_cast<int>(slots.size());
  std::vector<std::vector<int>> subsets;
  for (int a = 0; a < n; ++a) {
    subsets.push_back({a});
    for (int b = a + 1; b < n; ++b) {
      subsets.push_back({a, b});
      for (int c = b + 1; c < n; ++c) subsets.push_back({a, b, c});
    }
  }
  ASSERT_EQ(subsets.size(), 8u + 28u + 56u);

  for (const auto& lost : subsets) {
    for (const bool complete : {true, false}) {
      for (const bool buddy : {true, false}) {
        for (const PlannerMode mode : {PlannerMode::Lattice, PlannerMode::ForceCr,
                                       PlannerMode::ForceRc, PlannerMode::ForceAc}) {
          const auto plan =
              plan_recovery(slots, s, 1, mode, facts_for(lost, complete, buddy));
          ASSERT_EQ(plan.entries.size(), lost.size());
          for (size_t i = 0; i < plan.entries.size(); ++i) {
            EXPECT_EQ(plan.entries[i].grid, lost[i]);  // ascending ids kept
            const auto a = plan.entries[i].action;
            if (!complete) {
              // Nothing to restore onto: only the combination-side rungs.
              EXPECT_TRUE(a == RecoveryAction::Gcp || a == RecoveryAction::Idle);
            }
            if (a == RecoveryAction::RcCopy || a == RecoveryAction::RcResample) {
              const int p = plan.entries[i].partner;
              ASSERT_GE(p, 0);
              ASSERT_LT(p, n);
              // An RC source must itself be alive.
              EXPECT_EQ(std::count(lost.begin(), lost.end(), p), 0);
            }
            if (a == RecoveryAction::Buddy) {
              EXPECT_GE(plan.entries[i].step, 0);
            }
          }
          // The full lattice restores every complete group (the disk rung
          // accepts any of them), so recoverable patterns never degrade.
          if (mode == PlannerMode::Lattice && complete) {
            EXPECT_TRUE(plan.fully_restored());
          }
        }
      }
    }
  }
}

// --- buddy placement --------------------------------------------------------

TEST(BuddyPlacement, HostDisjointFromGridAndRcPartner) {
  // Paper-scale RC layout (n=13, l=4, 8/4 procs): the placement rule's
  // strictest pass must hold for every rank — the buddy sits on a host that
  // serves neither the owner's grid nor its RC partner group.
  LayoutConfig cfg;
  cfg.scheme = Scheme{13, 4};
  cfg.technique = Technique::ResamplingCopying;
  const Layout layout = build_layout(cfg);
  const BuddyTopology topo = make_buddy_topology(layout, 12);
  ASSERT_EQ(topo.total_procs(), 76);

  for (int r = 0; r < topo.total_procs(); ++r) {
    const int b = ftr::rec::buddy_rank_of(topo, r);
    ASSERT_GE(b, 0) << "rank " << r;
    EXPECT_NE(b, r);
    const int g = topo.grid_of_rank(r);
    EXPECT_NE(topo.grid_of_rank(b), g);
    std::set<int> excluded;
    for (int gr = 0; gr < topo.procs_per_grid[static_cast<size_t>(g)]; ++gr) {
      excluded.insert(topo.host_of_rank(topo.first_rank[static_cast<size_t>(g)] + gr));
    }
    const int pg = topo.partner_grid[static_cast<size_t>(g)];
    if (pg >= 0) {
      for (int gr = 0; gr < topo.procs_per_grid[static_cast<size_t>(pg)]; ++gr) {
        excluded.insert(topo.host_of_rank(topo.first_rank[static_cast<size_t>(pg)] + gr));
      }
    }
    EXPECT_EQ(excluded.count(topo.host_of_rank(b)), 0u)
        << "rank " << r << " buddy " << b << " shares a host with its recovery sources";
  }
}

TEST(BuddyPlacement, ClientsAreTheInverseOfBuddyRankOf) {
  const Layout layout = build_layout(small_layout(Technique::ResamplingCopying));
  const BuddyTopology topo = make_buddy_topology(layout, 12);
  for (int holder = 0; holder < topo.total_procs(); ++holder) {
    for (int client : ftr::rec::buddy_clients_of(topo, holder)) {
      EXPECT_EQ(ftr::rec::buddy_rank_of(topo, client), holder);
    }
  }
  int total = 0;
  for (int h = 0; h < topo.total_procs(); ++h) {
    total += static_cast<int>(ftr::rec::buddy_clients_of(topo, h).size());
  }
  EXPECT_EQ(total, topo.total_procs());  // every rank has exactly one buddy
}

// --- replica store ----------------------------------------------------------

TEST(BuddyStore, KeepsTwoCrcVerifiedGenerations) {
  BuddyStore store;
  const std::vector<double> g8{1.0, 2.0, 3.0};
  const std::vector<double> g16{4.0, 5.0, 6.0};
  store.put(7, 1, 0, 8, g8, ftr::rec::replica_crc(8, g8));
  store.put(7, 1, 0, 16, g16, ftr::rec::replica_crc(16, g16));
  const auto h = store.holding(7, 1, 0);
  EXPECT_EQ(h.newest, 16);
  EXPECT_EQ(h.prev, 8);
  EXPECT_EQ(store.read_at(7, 1, 0, 16).value().data, g16);
  EXPECT_EQ(store.read_at(7, 1, 0, 8).value().data, g8);
  EXPECT_FALSE(store.read_at(7, 1, 0, 12).has_value());
  // A third generation demotes; the oldest is gone.
  const std::vector<double> g24{7.0};
  store.put(7, 1, 0, 24, g24, ftr::rec::replica_crc(24, g24));
  EXPECT_FALSE(store.read_at(7, 1, 0, 8).has_value());
  EXPECT_EQ(store.holding(7, 1, 0).prev, 16);
  // Replicas are keyed by holder pid: another pid sees nothing (diskless
  // semantics — a dead holder's replicas die with it).
  EXPECT_EQ(store.holding(8, 1, 0).newest, -1);
  EXPECT_GE(store.replications(), 3);
  EXPECT_GT(store.replicated_bytes(), 0);
}

TEST(BuddyStore, CorruptNewestFailsCrcAndPrevSurvives) {
  BuddyStore store;
  const std::vector<double> g8{1.5, 2.5};
  const std::vector<double> g16{3.5, 4.5};
  store.put(3, 0, 1, 8, g8, ftr::rec::replica_crc(8, g8));
  store.put(3, 0, 1, 16, g16, ftr::rec::replica_crc(16, g16));
  store.corrupt_newest(3, 0, 1);
  EXPECT_FALSE(store.read_at(3, 0, 1, 16).has_value());
  EXPECT_GE(store.corrupt_detected(), 1);
  EXPECT_EQ(store.read_at(3, 0, 1, 8).value().data, g8);
}

TEST(BuddyWire, PackUnpackRoundTripAndRejection) {
  const std::vector<double> data{0.25, -1.0, 9.5};
  auto buf = ftr::rec::pack_replica(2, 1, 12, data);
  auto msg = ftr::rec::unpack_replica(buf.data(), buf.size());
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->grid, 2);
  EXPECT_EQ(msg->grank, 1);
  EXPECT_EQ(msg->step, 12);
  EXPECT_EQ(msg->data, data);

  // Count-0 marker: valid, empty payload (the "generation vanished" reply).
  auto marker = ftr::rec::pack_replica(2, 1, 12, {});
  auto decoded = ftr::rec::unpack_replica(marker.data(), marker.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->data.empty());

  // Truncation and corruption are rejected, not mis-decoded.
  EXPECT_FALSE(ftr::rec::unpack_replica(buf.data(), buf.size() - 1).has_value());
  EXPECT_FALSE(ftr::rec::unpack_replica(buf.data(), 3).has_value());
  buf[buf.size() - 2] ^= std::byte{0x40};
  EXPECT_FALSE(ftr::rec::unpack_replica(buf.data(), buf.size()).has_value());
}

// --- env plumbing -----------------------------------------------------------

TEST(PlannerConfig, EnvOverridesRecoveryPolicyAndInterval) {
  setenv("FTR_RECOVERY", "planner", 1);
  setenv("FTR_BUDDY_EVERY", "6", 1);
  {
    FtApp app(small_app(Technique::ResamplingCopying));
    EXPECT_EQ(app.config().recovery, RecoveryPolicy::Planner);
    EXPECT_EQ(app.config().buddy_every, 6);
  }
  setenv("FTR_RECOVERY", "ac", 1);
  {
    FtApp app(small_app(Technique::CheckpointRestart));
    EXPECT_EQ(app.config().recovery, RecoveryPolicy::Ac);
  }
  setenv("FTR_RECOVERY", "bogus", 1);
  {
    FtApp app(small_app(Technique::CheckpointRestart));
    EXPECT_EQ(app.config().recovery, RecoveryPolicy::Technique);
  }
  unsetenv("FTR_RECOVERY");
  unsetenv("FTR_BUDDY_EVERY");
}

// --- end-to-end -------------------------------------------------------------

TEST(PlannerApp, PartnerPairLossRecoveredViaBuddyWithinTolerance) {
  // The acceptance pattern: a grid AND its RC partner lost together — the
  // paper's RC aborts on it.  With buddy snapshots the planner restores
  // both grids exactly (snapshot + deterministic recompute), so the
  // combined-solution error matches the clean run to 1e-10.
  const double err_clean = clean_error(Technique::ResamplingCopying);
  ASSERT_GE(err_clean, 0.0);

  AppConfig cfg = small_app(Technique::ResamplingCopying);
  const int dup0 = ftr::rec::rc_partner(build_layout(cfg.layout).slots, 0).value();
  cfg.recovery = RecoveryPolicy::Planner;
  cfg.buddy_every = 4;
  cfg.failures.simulated_lost_grids = {0, dup0};
  ASSERT_FALSE(ftr::rec::rc_loss_allowed(build_layout(cfg.layout).slots,
                                         cfg.failures.simulated_lost_grids));

  ftmpi::Runtime rt(rt_opts());
  FtApp app(cfg);
  EXPECT_EQ(app.launch(rt), 0);
  EXPECT_NEAR(rt.get(keys::kErrorL1, -1), err_clean, 1e-10);
  EXPECT_DOUBLE_EQ(rt.get(std::string(keys::kPlanPrefix) + "buddy", 0), 2.0);
  EXPECT_GT(rt.get(keys::kBuddyReplications, 0), 0.0);
  EXPECT_GT(rt.get(keys::kBuddyReplBytes, 0), 0.0);
  EXPECT_GT(rt.get(keys::kRecoveryBytes, 0), 0.0);
}

TEST(PlannerApp, ExhaustiveSimulatedLossSweepRecoversOrDegrades) {
  // Every single loss, every RC-fatal partner pair, and a partner pair plus
  // a third grid: planner runs must complete (never abort) with a sane
  // combined error.  Exact-recovery patterns (buddy serves every lost
  // grid) must also match the clean error.
  const double err_clean = clean_error(Technique::ResamplingCopying);
  ASSERT_GE(err_clean, 0.0);
  const Layout layout = build_layout(small_layout(Technique::ResamplingCopying));
  const int n = static_cast<int>(layout.slots.size());

  std::vector<std::vector<int>> patterns;
  for (int g = 0; g < n; ++g) patterns.push_back({g});
  std::vector<std::vector<int>> fatal_pairs;
  for (int g = 0; g < n; ++g) {
    const auto p = ftr::rec::rc_partner(layout.slots, g);
    if (p.has_value() && *p > g) fatal_pairs.push_back({g, *p});
  }
  ASSERT_GE(fatal_pairs.size(), 3u);
  patterns.insert(patterns.end(), fatal_pairs.begin(), fatal_pairs.end());
  patterns.push_back({fatal_pairs[0][0], fatal_pairs[0][1], fatal_pairs[1][0]});

  for (const auto& lost : patterns) {
    AppConfig cfg = small_app(Technique::ResamplingCopying);
    cfg.recovery = RecoveryPolicy::Planner;
    cfg.buddy_every = 4;
    cfg.failures.simulated_lost_grids = lost;
    ftmpi::Runtime rt(rt_opts());
    FtApp app(cfg);
    EXPECT_EQ(app.launch(rt), 0);
    const double err = rt.get(keys::kErrorL1, -1);
    ASSERT_GE(err, 0.0);
    EXPECT_LT(err, 0.2);
    const double planned = rt.get(std::string(keys::kPlanPrefix) + "rc_copy", 0) +
                           rt.get(std::string(keys::kPlanPrefix) + "rc_resample", 0) +
                           rt.get(std::string(keys::kPlanPrefix) + "buddy", 0) +
                           rt.get(std::string(keys::kPlanPrefix) + "disk", 0) +
                           rt.get(std::string(keys::kPlanPrefix) + "gcp", 0) +
                           rt.get(std::string(keys::kPlanPrefix) + "idle", 0);
    EXPECT_DOUBLE_EQ(planned, static_cast<double>(lost.size()));
    // Copy and buddy restores are bit-exact; only resampling perturbs.
    const bool exact = rt.get(std::string(keys::kPlanPrefix) + "rc_resample", 0) == 0 &&
                       rt.get(std::string(keys::kPlanPrefix) + "gcp", 0) == 0 &&
                       rt.get(std::string(keys::kPlanPrefix) + "idle", 0) == 0;
    if (exact) {
      EXPECT_NEAR(err, err_clean, 1e-10);
    }
  }
}

TEST(PlannerApp, ChaosKillAtBuddySendRecoversFromCommonGeneration) {
  // Rank 5 (grid 1) dies entering its *second* replication send (step 8),
  // so its buddy holds only generation 4 while its group mates replicated 4
  // and 8.  The planner must agree on the common generation 4 — before any
  // disk checkpoint exists — and the snapshot + recompute is exact.
  const double err_clean = clean_error(Technique::CheckpointRestart);
  ASSERT_GE(err_clean, 0.0);

  ftmpi::Runtime rt(rt_opts());
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = "buddy.send", .victim = 5, .occurrence = 2});
  AppConfig cfg = small_app(Technique::CheckpointRestart);
  cfg.recovery = RecoveryPolicy::Planner;
  cfg.buddy_every = 4;
  FtApp app(cfg);
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 1);
  EXPECT_EQ(chaos.kills_fired(), 1);
  EXPECT_DOUBLE_EQ(rt.get(keys::kRepairs, -1), 1.0);
  EXPECT_DOUBLE_EQ(rt.get(std::string(keys::kPlanPrefix) + "buddy", 0), 1.0);
  EXPECT_NEAR(rt.get(keys::kErrorL1, -1), err_clean, 1e-10);
}

TEST(PlannerApp, ChaosSeedSweepAtBuddySendAlwaysRecovers) {
  // Random victims at the replication boundary: whether or not the victim
  // ever replicated, the planner finds a rung (buddy or disk/recompute)
  // and recovery stays exact.
  const double err_clean = clean_error(Technique::CheckpointRestart);
  ASSERT_GE(err_clean, 0.0);
  const Layout layout = build_layout(small_layout(Technique::CheckpointRestart));

  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    ftmpi::Runtime rt(rt_opts());
    ChaosInjector chaos(rt);
    for (const ChaosEvent& ev :
         ChaosInjector::random_plan(seed, layout.total_procs, 1, {"buddy.send"})) {
      chaos.schedule(ev);
    }
    AppConfig cfg = small_app(Technique::CheckpointRestart);
    cfg.recovery = RecoveryPolicy::Planner;
    cfg.buddy_every = 4;
    FtApp app(cfg);
    const int killed = app.launch(rt);
    EXPECT_EQ(killed, chaos.kills_fired()) << "seed " << seed;
    EXPECT_GE(rt.get(keys::kRepairs, -1), 1.0) << "seed " << seed;
    const double err = rt.get(keys::kErrorL1, -1);
    ASSERT_GE(err, 0.0) << "seed " << seed;
    EXPECT_LT(err, 0.2) << "seed " << seed;
    // Lower-diagonal victims may come back through the (approximate) RC
    // resample rung — cheaper than buddy on the lattice; every other rung
    // the planner can pick here is bit-exact.
    if (rt.get(std::string(keys::kPlanPrefix) + "rc_resample", 0) == 0) {
      EXPECT_NEAR(err, err_clean, 1e-10) << "seed " << seed;
    }
  }
}

TEST(PlannerApp, ReplicationDoesNotPerturbResultsWithoutFailures) {
  // Buddy replication only spends (virtual) time; a failure-free planner
  // run must reproduce the technique-mode solution bit for bit, while the
  // replication totals show the overlap machinery actually ran.
  const double err_clean = clean_error(Technique::ResamplingCopying);
  AppConfig cfg = small_app(Technique::ResamplingCopying);
  cfg.recovery = RecoveryPolicy::Planner;
  cfg.buddy_every = 4;
  ftmpi::Runtime rt(rt_opts());
  FtApp app(cfg);
  EXPECT_EQ(app.launch(rt), 0);
  EXPECT_DOUBLE_EQ(rt.get(keys::kErrorL1, -1), err_clean);
  EXPECT_GT(rt.get(keys::kBuddyReplications, 0), 0.0);
  EXPECT_GT(rt.get(keys::kBuddyReplBytes, 0), 0.0);
  EXPECT_GE(rt.get(keys::kBuddyReplTime, 0), 0.0);
}
