// Tests for the runtime protocol sanitizer (FTR_SANITIZE=protocol).
//
// The sanitizer is the dynamic cross-check for ftlint's FTL005/FTL006: a
// rank that keeps using a communicator after *observing* its revocation, a
// double-free, a collective call sequence that diverges between ranks, or a
// collective on a world superseded by the overlapped-recovery handoff
// must abort the run with a "ftmpi-psan:" diagnostic naming the call sites.
// The positive tests pin that the sanctioned salvage idioms and the normal
// collective protocol stay silent; the death tests seed each violation
// class and match the diagnostic.  Without FTR_PSAN the whole suite is a
// single explicit skip, so a plain build still registers (and documents)
// the suite.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "ftmpi/api.hpp"
#include "ftmpi/psan.hpp"
#include "ftmpi/runtime.hpp"

#ifndef FTR_PSAN

TEST(Psan, RequiresProtocolSanitizerBuild) {
  GTEST_SKIP() << "built without FTR_SANITIZE=protocol; the protocol "
                  "sanitizer is compiled out";
}

#else

using namespace ftmpi;

namespace {

Runtime::Options small_opts() {
  Runtime::Options opt;
  opt.slots_per_host = 4;
  opt.real_time_limit_sec = 60.0;
  return opt;
}

}  // namespace

TEST(Psan, CleanProtocolRunStaysSilent) {
  // A full window of matched collectives, verified and reset at an agree,
  // then a second window: the sanitizer must not interfere.
  Runtime rt(small_opts());
  std::atomic<int> failures{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    auto check = [&](int rc) {
      if (rc != kSuccess) ++failures;
    };
    check(barrier(w));
    int v = w.rank() == 0 ? 41 : 0;
    check(bcast(&v, 1, 0, w));
    if (v != 41) ++failures;
    Comm half;
    check(comm_split(w, w.rank() % 2, w.rank(), &half));
    check(barrier(half));
    check(comm_free(&half));
    int flag = 1;
    check(comm_agree(w, &flag));  // verifies + resets the stream on w
    if (flag != 1) ++failures;
    check(barrier(w));
    check(comm_agree(w, &flag));  // second window verifies independently
  });
  EXPECT_EQ(rt.run("main", 4), 0);
  EXPECT_EQ(failures.load(), 0);
}

TEST(Psan, SalvageAfterRevokeIsAllowed) {
  // The paper's drain idiom: after observing a revocation, a rank may still
  // probe/receive buffered messages, shrink, agree, and free — exactly the
  // set ftlint sanctions for FTL006.
  Runtime rt(small_opts());
  std::atomic<int> failures{0};
  std::atomic<int> drained{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    auto check = [&](int rc) {
      if (rc != kSuccess) ++failures;
    };
    if (w.rank() == 1) {
      const double payload = 2.5;
      check(send(&payload, 1, 0, 7, w));
    }
    check(barrier(w));  // orders the eager send before the revoke
    if (w.rank() == 0) {
      check(comm_revoke(w));
      int have = 0;
      Status st;
      check(iprobe_buffered(kAnySource, 7, w, &have, &st));
      if (have != 0) {
        double got = 0.0;
        check(recv_buffered(&got, sizeof(got), st.source, 7, w, &st));
        if (got == 2.5) ++drained;
      }
    }
    Comm shrunk;
    check(comm_shrink(w, &shrunk));
    check(barrier(shrunk));
    check(comm_free(&shrunk));
  });
  EXPECT_EQ(rt.run("main", 2), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(drained.load(), 1);
}

TEST(Psan, DrainAndDropOfSupersededWorldStaySilent) {
  // Overlapped recovery's handoff idiom: once a rank acks the repaired-world
  // doorbell, the pre-handoff world and the continuation sub-communicator
  // are dead weight — draining buffered messages off them and freeing the
  // handles must stay silent; only collectives are use-after-handoff.  The
  // hooks are driven directly: this test pins the sanctioned residue of a
  // handoff without standing up the whole overlap protocol.
  Runtime rt(small_opts());
  std::atomic<int> failures{0};
  std::atomic<int> drained{0};
  rt.register_app("main", [&](const std::vector<std::string>&) {
    Comm& w = world();
    auto check = [&](int rc) {
      if (rc != kSuccess) ++failures;
    };
    if (w.rank() == 1) {
      const double payload = 4.5;
      check(send(&payload, 1, 0, 9, w));
    }
    check(barrier(w));  // orders the eager send before the handoff
    Comm side;
    check(comm_split(w, 0, w.rank(), &side));
    psan::on_overlap_split(side, /*epoch=*/7, __FILE__, __LINE__);
    psan::on_handoff(w, /*epoch=*/7, __FILE__, __LINE__);
    if (w.rank() == 0) {
      int have = 0;
      Status st;
      check(iprobe_buffered(kAnySource, 9, w, &have, &st));
      if (have != 0) {
        double got = 0.0;
        check(recv_buffered(&got, sizeof(got), st.source, 9, w, &st));
        if (got == 4.5) ++drained;
      }
    }
    check(comm_free(&side));
  });
  EXPECT_EQ(rt.run("main", 2), 0);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(drained.load(), 1);
}

using PsanDeath = ::testing::Test;

TEST(PsanDeath, UseAfterObservedRevokeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime rt(small_opts());
        rt.register_app("main", [&](const std::vector<std::string>&) {
          Comm& w = world();
          if (w.rank() == 0) {
            (void)comm_revoke(w);  // rank 0 has now observed the revocation
            const int v = 1;
            (void)send(&v, 1, 1, 0, w);  // non-sanctioned use: must abort
          }
        });
        rt.run("main", 2);
      },
      "ftmpi-psan: use-after-revoke");
}

TEST(PsanDeath, DoubleFreeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime rt(small_opts());
        rt.register_app("main", [&](const std::vector<std::string>&) {
          Comm& w = world();
          Comm a;
          (void)comm_split(w, 0, 0, &a);
          Comm b = a;  // second handle to the same context
          (void)comm_free(&a);
          (void)comm_free(&b);  // must abort
        });
        rt.run("main", 1);
      },
      "ftmpi-psan: double-free");
}

TEST(PsanDeath, CollectiveOnPreHandoffWorldAborts) {
  // A rank that acked the repaired-world doorbell but keeps running
  // collectives on the pre-handoff world has half the job on a layout
  // nobody else is in any more; the sanitizer must abort it at the first
  // such collective with the handoff site and doorbell epoch pinned.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime rt(small_opts());
        rt.register_app("main", [&](const std::vector<std::string>&) {
          Comm& w = world();
          psan::on_handoff(w, /*epoch=*/3, __FILE__, __LINE__);
          (void)barrier(w);  // straggler collective: must abort
        });
        rt.run("main", 2);
      },
      "ftmpi-psan: use-after-handoff");
}

TEST(PsanDeath, CollectiveOnSupersededContinuationCommAborts) {
  // The continuation sub-communicator recorded at the overlap split dies
  // with the pre-handoff world: a collective on it after the handoff is the
  // same violation class, caught through the split-time tracking rather
  // than the world handle passed to on_handoff.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime rt(small_opts());
        rt.register_app("main", [&](const std::vector<std::string>&) {
          Comm& w = world();
          Comm side;
          (void)comm_split(w, 0, w.rank(), &side);
          psan::on_overlap_split(side, /*epoch=*/5, __FILE__, __LINE__);
          psan::on_handoff(w, /*epoch=*/5, __FILE__, __LINE__);
          (void)barrier(side);  // superseded with the world: must abort
        });
        rt.run("main", 2);
      },
      "ftmpi-psan: use-after-handoff");
}

TEST(PsanDeath, DivergentCollectiveSequenceAbortsAtAgree) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime rt(small_opts());
        rt.register_app("main", [&](const std::vector<std::string>&) {
          Comm& w = world();
          // Rank 0 runs a broadcast the other rank never enters.  The eager
          // root-side sends complete "successfully", so only the stream
          // hashes carried by the next agree can expose the divergence.
          if (w.rank() == 0) {
            int v = 1;
            (void)bcast(&v, 1, 0, w);
          }
          int flag = 1;
          (void)comm_agree(w, &flag);  // must abort at verification
        });
        rt.run("main", 2);
      },
      "ftmpi-psan: collective sequence divergence");
}

TEST(PsanDeath, TreeAgreeDivergenceFromDeepLeafAborts) {
  // Same violation class as above, but across a log-depth agreement tree:
  // the divergent rank is a leaf (rank 7 of 8, bottom of the binomial
  // tree), so its stream hash has to survive the child->parent reductions
  // all the way to the root for the verification to trip.  Pins that the
  // tree protocol carries the per-rank hashes instead of collapsing them.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Runtime::Options opt;
        opt.slots_per_host = 8;
        opt.real_time_limit_sec = 60.0;
        Runtime rt(opt);
        rt.register_app("main", [&](const std::vector<std::string>&) {
          Comm& w = world();
          if (w.rank() == 7) {
            int v = 1;
            (void)bcast(&v, 1, 7, w);  // collective nobody else enters
          }
          int flag = 1;
          (void)comm_agree(w, &flag);  // must abort at tree verification
        });
        rt.run("main", 8);
      },
      "ftmpi-psan: collective sequence divergence");
}

#endif  // FTR_PSAN
