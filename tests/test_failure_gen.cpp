// Failure inter-arrival model (FTR_FAILURE_DIST=exp|weibull): distribution
// moments against closed forms, env-knob parsing, and the scheduled plan's
// invariants (rank 0 spared, steps from cumulative gaps, bounds respected).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/rng.hpp"
#include "core/failure_gen.hpp"
#include "core/layout.hpp"

using namespace ftr::core;
using ftr::comb::Scheme;
using ftr::comb::Technique;

namespace {

LayoutConfig small_layout() {
  LayoutConfig cfg;
  cfg.scheme = Scheme{6, 3};
  cfg.technique = Technique::CheckpointRestart;
  cfg.procs_diagonal = 4;
  cfg.procs_lower = 2;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

struct Moments {
  double mean = 0.0;
  double var = 0.0;
};

Moments sample_moments(const ArrivalModel& m, int n, std::uint64_t seed) {
  ftr::Xoshiro256 rng(seed);
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = draw_interarrival(m, rng);
    EXPECT_GT(x, 0.0);
    sum += x;
    sumsq += x * x;
  }
  Moments out;
  out.mean = sum / n;
  out.var = sumsq / n - out.mean * out.mean;
  return out;
}

}  // namespace

TEST(FailureArrivals, ExponentialMomentsMatchMtbf) {
  // Exp(mean = scale): E[X] = scale, Var[X] = scale^2.
  const ArrivalModel m{FailureDist::Exponential, 8.0, 1.0};
  const auto s = sample_moments(m, 200000, 42);
  EXPECT_NEAR(s.mean, 8.0, 8.0 * 0.02);
  EXPECT_NEAR(s.var, 64.0, 64.0 * 0.05);
}

TEST(FailureArrivals, WeibullMomentsMatchClosedForm) {
  // Weibull(k, lambda): E[X] = lambda*G(1+1/k),
  // Var[X] = lambda^2*(G(1+2/k) - G(1+1/k)^2).  Shape < 1 is the bursty
  // regime (heavy tail, clustered small gaps); shape > 1 the aging regime.
  for (const double k : {0.7, 2.0}) {
    const double lambda = 5.0;
    const ArrivalModel m{FailureDist::Weibull, lambda, k};
    const double g1 = std::tgamma(1.0 + 1.0 / k);
    const double g2 = std::tgamma(1.0 + 2.0 / k);
    const double mean = lambda * g1;
    const double var = lambda * lambda * (g2 - g1 * g1);
    const auto s = sample_moments(m, 400000, 7);
    EXPECT_NEAR(s.mean, mean, mean * 0.02) << "shape " << k;
    EXPECT_NEAR(s.var, var, var * 0.06) << "shape " << k;
  }
}

TEST(FailureArrivals, WeibullShapeOneDegeneratesToExponential) {
  // Same shape-1 Weibull and exponential draw must agree sample-by-sample:
  // scale * (-ln u)^(1/1) == scale * (-ln u).
  const ArrivalModel exp_m{FailureDist::Exponential, 3.0, 1.0};
  const ArrivalModel wei_m{FailureDist::Weibull, 3.0, 1.0};
  ftr::Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(draw_interarrival(exp_m, a), draw_interarrival(wei_m, b));
  }
}

TEST(FailureArrivals, EnvKnobsOverrideModel) {
  setenv("FTR_FAILURE_DIST", "weibull", 1);
  setenv("FTR_FAILURE_SCALE", "12.5", 1);
  setenv("FTR_FAILURE_SHAPE", "0.5", 1);
  const ArrivalModel m = arrival_model_from_env({});
  unsetenv("FTR_FAILURE_DIST");
  unsetenv("FTR_FAILURE_SCALE");
  unsetenv("FTR_FAILURE_SHAPE");
  EXPECT_EQ(m.dist, FailureDist::Weibull);
  EXPECT_DOUBLE_EQ(m.scale, 12.5);
  EXPECT_DOUBLE_EQ(m.shape, 0.5);
  // Unset environment: the fallback passes through untouched.
  const ArrivalModel fb{FailureDist::Exponential, 4.0, 1.0};
  const ArrivalModel same = arrival_model_from_env(fb);
  EXPECT_EQ(same.dist, fb.dist);
  EXPECT_DOUBLE_EQ(same.scale, fb.scale);
}

TEST(FailureArrivals, ScheduledPlanRespectsInvariants) {
  const Layout layout = build_layout(small_layout());
  ftr::Xoshiro256 rng(123);
  const long max_step = 40;
  const ArrivalModel bursty{FailureDist::Weibull, 6.0, 0.5};
  for (int rep = 0; rep < 50; ++rep) {
    const FailurePlan plan = scheduled_real_failures(layout, 3, max_step, bursty, rng);
    ASSERT_EQ(plan.kill_at_step.size(), 3u);
    for (const auto& [rank, step] : plan.kill_at_step) {
      EXPECT_GT(rank, 0);  // rank 0 never fails (paper Sec. III)
      EXPECT_LT(rank, layout.total_procs);
      EXPECT_GE(step, 1);
      EXPECT_LT(step, max_step);
    }
  }
}
