// Additional end-to-end scenarios for the fault-tolerant application:
// failures before the first checkpoint, losses of duplicate grids, two
// failure episodes in one CR run, lower-diagonal losses, determinism of the
// virtual-time results, and blackboard completeness.

#include <gtest/gtest.h>

#include <cmath>

#include "core/ft_app.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftr::core;
using ftr::comb::Scheme;
using ftr::comb::Technique;

namespace {

LayoutConfig small_layout(Technique t) {
  LayoutConfig cfg;
  cfg.scheme = Scheme{6, 3};
  cfg.technique = t;
  cfg.procs_diagonal = 4;
  cfg.procs_lower = 2;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

AppConfig small_app(Technique t) {
  AppConfig cfg;
  cfg.layout = small_layout(t);
  cfg.timesteps = 24;
  cfg.checkpoints = 2;
  return cfg;
}

ftmpi::Runtime::Options rt_opts() {
  ftmpi::Runtime::Options o;
  o.real_time_limit_sec = 120.0;
  return o;
}

}  // namespace

TEST(FtAppEdge, FailureBeforeFirstCheckpointRestartsFromInitial) {
  // Kill at step 2, before any checkpoint exists: the grid must restart
  // from the initial condition and still end exactly right (CR is exact).
  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = small_app(Technique::CheckpointRestart);
  cfg.failures.kill_at_step[5] = 2;
  FtApp app(cfg);
  EXPECT_EQ(app.launch(rt), 1);
  const double err = rt.get(keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0);

  ftmpi::Runtime rt2(rt_opts());
  FtApp clean(small_app(Technique::CheckpointRestart));
  clean.launch(rt2);
  EXPECT_NEAR(err, rt2.get(keys::kErrorL1, -1), 1e-12);
}

TEST(FtAppEdge, FailureOnLastStepIsCaughtByEndDetection) {
  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = small_app(Technique::AlternateCombination);
  cfg.failures.kill_at_step[13] = 23;  // the very last step
  FtApp app(cfg);
  EXPECT_EQ(app.launch(rt), 1);
  EXPECT_DOUBLE_EQ(rt.get(keys::kRepairs, -1), 1.0);
  EXPECT_GE(rt.get(keys::kErrorL1, -1), 0.0);
}

TEST(FtAppEdge, RcSurvivesLossOfDuplicateGrid) {
  // Simulated loss of a duplicate grid: recovered by copying its primary;
  // since duplicates do not enter the combination, the error matches clean.
  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = small_app(Technique::ResamplingCopying);
  const Layout layout = build_layout(cfg.layout);
  int dup_id = -1;
  for (const auto& s : layout.slots) {
    if (s.role == ftr::comb::GridRole::Duplicate) dup_id = s.id;
  }
  ASSERT_GE(dup_id, 0);
  cfg.failures.simulated_lost_grids = {dup_id};
  FtApp app(cfg);
  EXPECT_EQ(app.launch(rt), 0);

  ftmpi::Runtime rt2(rt_opts());
  FtApp clean(small_app(Technique::ResamplingCopying));
  clean.launch(rt2);
  EXPECT_NEAR(rt.get(keys::kErrorL1, -1), rt2.get(keys::kErrorL1, -1), 1e-12);
}

TEST(FtAppEdge, RcLowerDiagonalLossUsesResampling) {
  // Losing a lower-diagonal grid forces the approximate resample path; the
  // error must move away from the clean value but stay bounded.
  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = small_app(Technique::ResamplingCopying);
  const Layout layout = build_layout(cfg.layout);
  int lower_id = -1;
  for (const auto& s : layout.slots) {
    if (s.role == ftr::comb::GridRole::LowerDiagonal) lower_id = s.id;
  }
  ASSERT_GE(lower_id, 0);
  cfg.failures.simulated_lost_grids = {lower_id};
  FtApp app(cfg);
  EXPECT_EQ(app.launch(rt), 0);
  const double err = rt.get(keys::kErrorL1, -1);

  ftmpi::Runtime rt2(rt_opts());
  FtApp clean(small_app(Technique::ResamplingCopying));
  clean.launch(rt2);
  const double clean_err = rt2.get(keys::kErrorL1, -1);
  EXPECT_GT(err, clean_err);
  EXPECT_LT(err, 100.0 * clean_err);
}

TEST(FtAppEdge, TwoFailureEpisodesInOneCrRun) {
  // Failures in different checkpoint intervals: two separate repairs.
  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = small_app(Technique::CheckpointRestart);
  cfg.checkpoints = 2;                  // intervals end at steps 8, 16, 24
  cfg.failures.kill_at_step[5] = 4;     // interval 0
  cfg.failures.kill_at_step[9] = 12;    // interval 1
  FtApp app(cfg);
  EXPECT_EQ(app.launch(rt), 2);
  EXPECT_DOUBLE_EQ(rt.get(keys::kRepairs, -1), 2.0);
  const double err = rt.get(keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0);

  ftmpi::Runtime rt2(rt_opts());
  AppConfig clean_cfg = small_app(Technique::CheckpointRestart);
  clean_cfg.checkpoints = 2;
  FtApp clean(clean_cfg);
  clean.launch(rt2);
  EXPECT_NEAR(err, rt2.get(keys::kErrorL1, -1), 1e-12);
}

TEST(FtAppEdge, VirtualTimeIsDeterministic) {
  auto run_once = [](Technique t) {
    ftmpi::Runtime rt(rt_opts());
    AppConfig cfg = small_app(t);
    cfg.failures.simulated_lost_grids = {1};
    FtApp app(cfg);
    app.launch(rt);
    return std::pair{rt.get(keys::kTotalTime, -1), rt.get(keys::kErrorL1, -1)};
  };
  for (const Technique t :
       {Technique::CheckpointRestart, Technique::AlternateCombination}) {
    const auto a = run_once(t);
    const auto b = run_once(t);
    EXPECT_DOUBLE_EQ(a.first, b.first) << technique_name(t);
    EXPECT_DOUBLE_EQ(a.second, b.second) << technique_name(t);
  }
}

TEST(FtAppEdge, BlackboardIsComplete) {
  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = small_app(Technique::ResamplingCopying);
  cfg.failures.kill_at_step[6] = 10;
  FtApp app(cfg);
  app.launch(rt);
  for (const char* key :
       {keys::kTotalTime, keys::kSolveTime, keys::kCombineTime, keys::kErrorL1,
        keys::kProcs, keys::kRepairs, keys::kReconTotal, keys::kReconFailedList,
        keys::kReconShrink, keys::kReconSpawn, keys::kReconAgree, keys::kReconMerge,
        keys::kReconSplit, keys::kRecoveryTime, keys::kCkptWriteTotal,
        keys::kCkptWrites}) {
    EXPECT_FALSE(std::isnan(rt.get(key, std::nan("")))) << key;
  }
  EXPECT_DOUBLE_EQ(rt.get(keys::kProcs, 0),
                   static_cast<double>(app.layout().total_procs));
}

TEST(FtAppEdge, ScatterRecoveredCanBeDisabled) {
  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = small_app(Technique::AlternateCombination);
  cfg.scatter_recovered = false;
  cfg.failures.simulated_lost_grids = {2};
  FtApp app(cfg);
  EXPECT_EQ(app.launch(rt), 0);
  EXPECT_GE(rt.get(keys::kErrorL1, -1), 0.0);
}
