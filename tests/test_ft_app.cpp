// End-to-end tests of the fault-tolerant application: layout, failure
// generator, and full runs of all three techniques with no failures, real
// process failures, and simulated losses.

#include <gtest/gtest.h>

#include <cmath>

#include "core/failure_gen.hpp"
#include "core/ft_app.hpp"
#include "core/layout.hpp"
#include "core/metrics.hpp"
#include "recovery/replication.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftr::core;
using ftr::comb::Scheme;
using ftr::comb::Technique;

namespace {

LayoutConfig small_layout(Technique t) {
  LayoutConfig cfg;
  cfg.scheme = Scheme{6, 3};  // 3 diagonal + 2 lower-diagonal grids
  cfg.technique = t;
  cfg.procs_diagonal = 4;
  cfg.procs_lower = 2;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

AppConfig small_app(Technique t) {
  AppConfig cfg;
  cfg.layout = small_layout(t);
  cfg.timesteps = 24;
  cfg.checkpoints = 2;
  return cfg;
}

ftmpi::Runtime::Options rt_opts() {
  ftmpi::Runtime::Options o;
  o.slots_per_host = 12;
  o.real_time_limit_sec = 120.0;
  return o;
}

}  // namespace

TEST(Layout, PaperProcessCounts) {
  // n=13, l=4 with the paper's 8/4/2/1 allocation: CR 44, RC 76, AC 49.
  LayoutConfig cfg;
  cfg.scheme = Scheme{13, 4};
  cfg.technique = Technique::CheckpointRestart;
  EXPECT_EQ(build_layout(cfg).total_procs, 44);
  cfg.technique = Technique::ResamplingCopying;
  EXPECT_EQ(build_layout(cfg).total_procs, 76);
  cfg.technique = Technique::AlternateCombination;
  EXPECT_EQ(build_layout(cfg).total_procs, 49);
}

TEST(Layout, Table1CoreCounts) {
  // The paper's Table I sweep: 19, 38, 76, 152, 304 cores.
  for (const auto& [diag, total] :
       std::vector<std::pair<int, int>>{{4, 19}, {8, 38}, {16, 76}, {32, 152}, {64, 304}}) {
    const Layout l = build_layout(table1_layout(13, 4, diag));
    EXPECT_EQ(l.total_procs, total) << "diag=" << diag;
  }
}

TEST(Layout, RankToGridMapping) {
  const Layout l = build_layout(small_layout(Technique::CheckpointRestart));
  // 3 diagonal grids x 4 procs, then 2 lower x 2 procs = 16 procs.
  EXPECT_EQ(l.total_procs, 16);
  EXPECT_EQ(l.grid_of_rank(0), 0);
  EXPECT_EQ(l.grid_of_rank(3), 0);
  EXPECT_EQ(l.grid_of_rank(4), 1);
  EXPECT_EQ(l.grid_of_rank(11), 2);
  EXPECT_EQ(l.grid_of_rank(12), 3);
  EXPECT_EQ(l.grid_of_rank(15), 4);
  EXPECT_EQ(l.group_rank(5), 1);
  EXPECT_EQ(l.root_rank_of_grid(3), 12);
  EXPECT_EQ(l.grids_of_ranks({0, 1, 13}), (std::vector<int>{0, 3}));
}

TEST(FailureGen, RealFailuresAvoidRankZero) {
  const Layout l = build_layout(small_layout(Technique::CheckpointRestart));
  ftr::Xoshiro256 rng(7);
  for (int rep = 0; rep < 50; ++rep) {
    const auto plan = random_real_failures(l, 3, 20, rng);
    EXPECT_EQ(plan.kill_at_step.size(), 3u);
    for (const auto& [rank, step] : plan.kill_at_step) {
      EXPECT_NE(rank, 0);
      EXPECT_GE(step, 1);
      EXPECT_LT(step, 20);
    }
  }
}

TEST(FailureGen, RcSimulatedLossesRespectConstraint) {
  const Layout l = build_layout(small_layout(Technique::ResamplingCopying));
  ftr::Xoshiro256 rng(11);
  for (int rep = 0; rep < 50; ++rep) {
    const auto plan = random_simulated_losses(l, 3, rng);
    EXPECT_EQ(plan.simulated_lost_grids.size(), 3u);
    EXPECT_TRUE(ftr::rec::rc_loss_allowed(l.slots, plan.simulated_lost_grids));
  }
}

TEST(Metrics, ProcessTimeOverheadFormulas) {
  EXPECT_DOUBLE_EQ(ProcessTimeOverhead::cr(10, 3.5, 7.0), 42.0);
  // (2*76 + 100*(76-44)) / 44
  EXPECT_DOUBLE_EQ(ProcessTimeOverhead::rc(2.0, 100.0, 76, 44), (2.0 * 76 + 3200.0) / 44);
  EXPECT_DOUBLE_EQ(ProcessTimeOverhead::ac(0.1, 100.0, 49, 44), (0.1 * 49 + 500.0) / 44);
}

class FtAppNoFailure : public ::testing::TestWithParam<Technique> {};

TEST_P(FtAppNoFailure, RunsCleanAndAccurate) {
  ftmpi::Runtime rt(rt_opts());
  FtApp app(small_app(GetParam()));
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 0);
  EXPECT_DOUBLE_EQ(rt.get(keys::kRepairs, -1), 0.0);
  const double err = rt.get(keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0);
  EXPECT_LT(err, 0.05);  // combined solution approximates the PDE
  EXPECT_GT(rt.get(keys::kTotalTime, -1), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, FtAppNoFailure,
                         ::testing::Values(Technique::CheckpointRestart,
                                           Technique::ResamplingCopying,
                                           Technique::AlternateCombination),
                         [](const auto& tpi) {
                           return std::string(ftr::comb::technique_tag(tpi.param));
                         });

class FtAppRealFailure : public ::testing::TestWithParam<Technique> {};

TEST_P(FtAppRealFailure, SurvivesOneKill) {
  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = small_app(GetParam());
  cfg.failures.kill_at_step[5] = 10;  // a rank of grid 1 dies mid-run
  FtApp app(cfg);
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 1);
  EXPECT_DOUBLE_EQ(rt.get(keys::kRepairs, -1), 1.0);
  EXPECT_GT(rt.get(keys::kReconTotal, -1), 0.0);
  EXPECT_GT(rt.get(keys::kReconSpawn, -1), 0.0);
  const double err = rt.get(keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0);
  // Recovery keeps the error within a factor of ~10 of a typical baseline.
  EXPECT_LT(err, 0.2);
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, FtAppRealFailure,
                         ::testing::Values(Technique::CheckpointRestart,
                                           Technique::ResamplingCopying,
                                           Technique::AlternateCombination),
                         [](const auto& tpi) {
                           return std::string(ftr::comb::technique_tag(tpi.param));
                         });

TEST(FtAppRealFailures, TwoKillsInDifferentGrids) {
  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = small_app(Technique::AlternateCombination);
  cfg.failures.kill_at_step[5] = 8;    // grid 1
  cfg.failures.kill_at_step[13] = 8;   // grid 3
  FtApp app(cfg);
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 2);
  EXPECT_DOUBLE_EQ(rt.get(keys::kRepairs, -1), 1.0);  // one repair fixes both
  const double err = rt.get(keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0);
  EXPECT_LT(err, 0.5);
}

TEST(FtAppRealFailures, CrExactRecoveryMatchesCleanError) {
  // CR recovery is exact: the error with a failure must equal the no-failure
  // error (same grids, same arithmetic after the recompute).
  ftmpi::Runtime rt1(rt_opts());
  FtApp clean(small_app(Technique::CheckpointRestart));
  clean.launch(rt1);
  const double err_clean = rt1.get(keys::kErrorL1, -1);

  ftmpi::Runtime rt2(rt_opts());
  AppConfig cfg = small_app(Technique::CheckpointRestart);
  cfg.failures.kill_at_step[6] = 14;
  FtApp faulty(cfg);
  faulty.launch(rt2);
  const double err_faulty = rt2.get(keys::kErrorL1, -1);

  ASSERT_GE(err_clean, 0.0);
  EXPECT_NEAR(err_faulty, err_clean, 1e-12);
}

TEST(FtAppSimulated, LossesRecoveredPerTechnique) {
  for (const Technique t : {Technique::CheckpointRestart, Technique::ResamplingCopying,
                            Technique::AlternateCombination}) {
    ftmpi::Runtime rt(rt_opts());
    AppConfig cfg = small_app(t);
    cfg.failures.simulated_lost_grids = {1};
    FtApp app(cfg);
    const int killed = app.launch(rt);
    EXPECT_EQ(killed, 0) << technique_name(t);
    EXPECT_GT(rt.get(keys::kRecoveryTime, -1), 0.0) << technique_name(t);
    const double err = rt.get(keys::kErrorL1, -1);
    ASSERT_GE(err, 0.0) << technique_name(t);
    EXPECT_LT(err, 0.2) << technique_name(t);
  }
}

TEST(FtAppSimulated, CrRecoveryDominatedByCheckpointIo) {
  // On the OPL profile (T_IO = 3.52 s) CR's recovery window (read +
  // recompute) plus its checkpoint writes dwarf AC's coefficient-only
  // recovery.
  ftmpi::Runtime rt_cr(rt_opts());
  AppConfig cr = small_app(Technique::CheckpointRestart);
  cr.failures.simulated_lost_grids = {1};
  FtApp(cr).launch(rt_cr) == 0 ? void() : void();
  const double cr_total =
      rt_cr.get(keys::kCkptWriteTotal, 0) + rt_cr.get(keys::kRecoveryTime, 0);

  ftmpi::Runtime rt_ac(rt_opts());
  AppConfig ac = small_app(Technique::AlternateCombination);
  ac.failures.simulated_lost_grids = {1};
  FtApp(ac).launch(rt_ac) == 0 ? void() : void();
  const double ac_total = rt_ac.get(keys::kRecoveryTime, 0);

  EXPECT_GT(cr_total, 10.0 * ac_total);
}
