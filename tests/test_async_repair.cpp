// Non-blocking overlapped recovery (RecoveryPolicy::Overlap): survivors of
// unaffected grids keep time-stepping on a continuation sub-communicator
// while the affected grids' survivors rebuild the world in the background,
// meeting again at the doorbell handoff.  Covers the happy path (handoff,
// overlapped steps, exact recovery), the planner-policy pin (overlap
// machinery fully disengaged), and chaos kills at the overlap protocol
// boundaries "repair.split", "repair.doorbell" and "repair.handoff"
// (restart-not-deadlock: the attempt aborts onto the classic fallback and
// the run still completes correctly).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/async_repair.hpp"
#include "core/chaos.hpp"
#include "core/ft_app.hpp"
#include "core/layout.hpp"
#include "core/metrics.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"

using namespace ftr::core;
using ftr::comb::Scheme;
using ftr::comb::Technique;

namespace {

LayoutConfig small_layout() {
  LayoutConfig cfg;
  cfg.scheme = Scheme{6, 3};  // 3 diagonal + 2 lower-diagonal grids
  cfg.technique = Technique::CheckpointRestart;
  cfg.procs_diagonal = 4;
  cfg.procs_lower = 2;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

AppConfig overlap_app() {
  AppConfig cfg;
  cfg.layout = small_layout();
  cfg.timesteps = 24;
  cfg.checkpoints = 2;
  cfg.recovery = RecoveryPolicy::Overlap;
  return cfg;
}

ftmpi::Runtime::Options rt_opts() {
  ftmpi::Runtime::Options o;
  o.slots_per_host = 12;
  o.real_time_limit_sec = 120.0;
  return o;
}

double clean_error() {
  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = overlap_app();
  cfg.recovery = RecoveryPolicy::Technique;
  FtApp app(cfg);
  app.launch(rt);
  return rt.get(keys::kErrorL1, -1);
}

}  // namespace

// --- protocol unit tests ----------------------------------------------------

TEST(OverlapClassify, PartitionsSurvivorsByAffectedGrid) {
  const Layout layout = build_layout(small_layout());
  // Grid 1 spans ranks 4..7; rank 5 died.  Everyone else survives.
  std::vector<int> survivors;
  for (int r = 0; r < layout.total_procs; ++r) {
    if (r != 5) survivors.push_back(r);
  }
  const auto cls = overlap::classify(layout, survivors, {5});
  ASSERT_TRUE(cls.overlappable());
  EXPECT_EQ(cls.failed, std::vector<int>({5}));
  EXPECT_EQ(cls.affected, std::vector<int>({1}));
  EXPECT_EQ(cls.repair, std::vector<int>({4, 6, 7}));
  // rworld = repair + failed, ascending; rank == position after the split.
  EXPECT_EQ(cls.rworld, std::vector<int>({4, 5, 6, 7}));
  EXPECT_EQ(cls.rworld_rank_of(6), 2);
  EXPECT_EQ(cls.rworld_rank_of(0), -1);
  EXPECT_EQ(cls.repair_leader_old, 4);
  // No continuation rank belongs to an affected grid.
  for (int r : cls.continuation) {
    EXPECT_NE(layout.grid_of_rank(r), 1);
  }
}

TEST(OverlapDoorbell, EpochValidation) {
  overlap::DoorbellWire w;
  w.verdict = overlap::kVerdictReady;
  w.repair_epoch = 3;
  w.detector_epoch = 2;
  EXPECT_TRUE(overlap::epoch_ok(w, 3, 1));
  EXPECT_TRUE(overlap::epoch_ok(w, 3, 2));
  // Wrong attempt: a doorbell from an aborted earlier overlap must die.
  EXPECT_FALSE(overlap::epoch_ok(w, 4, 1));
  // Stale failure knowledge: sent before the attempt was armed.
  EXPECT_FALSE(overlap::epoch_ok(w, 3, 3));
  w.verdict = overlap::kVerdictNone;
  EXPECT_FALSE(overlap::epoch_ok(w, 3, 1));
}

TEST(OverlapManifest, PackUnpackRoundTrip) {
  std::vector<overlap::StagedReplica> reps(2);
  reps[0].grid = 1;
  reps[0].grank = 0;
  reps[0].step = 12;
  reps[0].data = {1.0, 2.0, 3.0};
  reps[1].grid = 1;
  reps[1].grank = 1;
  reps[1].step = 12;
  reps[1].data = {4.0, 5.0};
  const auto bytes = overlap::pack_manifest(reps);
  const auto back = overlap::unpack_manifest(bytes.data(), bytes.size());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].grid, 1);
  EXPECT_EQ(back[0].grank, 0);
  EXPECT_EQ(back[0].step, 12);
  EXPECT_EQ(back[0].data, reps[0].data);
  EXPECT_EQ(back[1].data, reps[1].data);
  // The empty manifest is valid wire traffic (every survivor sends one).
  const auto none = overlap::pack_manifest({});
  EXPECT_TRUE(overlap::unpack_manifest(none.data(), none.size()).empty());
}

// --- end-to-end: survivors keep stepping while repair runs -----------------

TEST(OverlapRecovery, MinorityKillHandsOffAndMatchesCleanError) {
  const double err_clean = clean_error();
  ASSERT_GE(err_clean, 0.0);

  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = overlap_app();
  cfg.failures.kill_at_step[5] = 10;  // a rank of grid 1 dies mid-run
  FtApp app(cfg);
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 1);

  // The background repair completed and both sides swapped onto the
  // repaired world at the doorbell handoff...
  EXPECT_GE(rt.get(keys::kOverlapHandoffs, -1), 1.0);
  // ...while the continuation side made forward progress during the repair.
  EXPECT_GT(rt.get(keys::kOverlapSteps, -1), 0.0);

  // CR restoration is exact, so overlapping it must not change the answer.
  const double err = rt.get(keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0);
  EXPECT_NEAR(err, err_clean, 1e-12);
}

TEST(OverlapRecovery, PlannerPolicyPinsClassicPath) {
  // FTR_RECOVERY=planner must reproduce the pre-overlap recovery path
  // bit-for-bit: the overlap machinery never engages (no handoffs, no
  // overlapped steps, no aborts) and the recovered error equals the clean
  // error exactly, as the classic CR pin guarantees.
  const double err_clean = clean_error();

  ftmpi::Runtime rt(rt_opts());
  AppConfig cfg = overlap_app();
  cfg.recovery = RecoveryPolicy::Planner;
  cfg.failures.kill_at_step[5] = 10;
  FtApp app(cfg);
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 1);
  EXPECT_EQ(rt.get(keys::kOverlapHandoffs, 0), 0.0);
  EXPECT_EQ(rt.get(keys::kOverlapSteps, 0), 0.0);
  EXPECT_EQ(rt.get(keys::kOverlapAborts, 0), 0.0);
  EXPECT_DOUBLE_EQ(rt.get(keys::kRepairs, -1), 1.0);
  const double err = rt.get(keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0);
  EXPECT_NEAR(err, err_clean, 1e-12);
}

// --- chaos: kills at the overlap protocol boundaries -----------------------

namespace {

/// Run the overlap app with one mid-run kill plus a chaos kill of `victim`
/// at overlap phase `label`; the attempt must abort onto the classic
/// stop-the-world fallback and still finish with a correct answer.
/// `expect_killed` counts all deaths: the step-10 self-kill, the chaos
/// victim, and — for kills landing after the background spawn — the
/// aborted overlap replacement child.
void chaos_overlap_run(const char* label, int victim, int expect_killed) {
  ftmpi::Runtime rt(rt_opts());
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = label, .victim = victim, .occurrence = 1});
  AppConfig cfg = overlap_app();
  cfg.failures.kill_at_step[5] = 10;
  FtApp app(cfg);
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, expect_killed) << label;
  EXPECT_EQ(chaos.kills_fired(), 1) << label;
  // The overlap attempt died with the victim; the classic fallback repaired
  // the world and the run completed (restart, not deadlock).
  EXPECT_GE(rt.get(keys::kRepairs, -1), 1.0) << label;
  const double err = rt.get(keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0) << label;
  EXPECT_LT(err, 0.2) << label;
}

}  // namespace

TEST(OverlapChaos, KillAtSplitFallsBackToClassic) {
  // Victim 4 is the repair leader: it dies entering "repair.split", so the
  // prefix's continuation/repair split fails and everyone falls back.  The
  // kill lands before the background spawn, so only two processes die.
  chaos_overlap_run("repair.split", 4, /*expect_killed=*/2);
}

TEST(OverlapChaos, KillAtDoorbellFallsBackToClassic) {
  // The repair leader dies ringing "repair.doorbell": the continuation side
  // sees the bridge revoke (death of the lone ringer) or times out, aborts
  // the attempt and rejoins the classic repair.  The background replacement
  // was already spawned; it aborts with the attempt (third death).
  chaos_overlap_run("repair.doorbell", 4, /*expect_killed=*/3);
}

TEST(OverlapChaos, KillAtHandoffFallsBackToClassic) {
  // A continuation rank dies entering "repair.handoff": the join collective
  // fails on both sides and the classic fallback repairs the full world.
  // Victim 1, not 0: the classic post-repair run-state broadcast is rooted
  // at world rank 0, a protocol assumption that predates overlapped
  // recovery, so the root stays out of chaos scope here.
  chaos_overlap_run("repair.handoff", 1, /*expect_killed=*/3);
}
