// Cascading-failure tests: chaos kills injected at recovery phase
// boundaries must still end in a correctly repaired (or correctly degraded)
// world, and checkpoint integrity must survive torn and corrupted
// snapshots.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "core/ft_app.hpp"
#include "core/layout.hpp"
#include "core/reconstruct.hpp"
#include "ftmpi/api.hpp"
#include "ftmpi/runtime.hpp"
#include "recovery/checkpoint.hpp"

using namespace ftr::core;
using namespace ftmpi;
using ftr::comb::Scheme;
using ftr::comb::Technique;

namespace {

Runtime::Options opts(int slots = 4) {
  Runtime::Options o;
  o.slots_per_host = slots;
  o.real_time_limit_sec = 120.0;
  return o;
}

/// Register the standard cascading-repair app: `pre_kill_rank` dies before
/// the reconstruct, the chaos schedule (installed by the caller) strikes
/// during it, and every survivor + respawn must end in a fully repaired
/// world of the original size with the original rank order.
void register_repair_app(Runtime& rt, int world_size, int pre_kill_rank,
                         std::atomic<int>& bad, std::atomic<int>& root_attempts) {
  rt.register_app("app", [&, world_size, pre_kill_rank](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    Comm w;
    if (!get_parent().is_null()) {
      // Respawned child.  Orphans of failed attempts never get here: their
      // bring-up protocol fails and they abort inside reconstruct().
      const auto res = recon.reconstruct({});
      if (res.exhausted) {
        ++bad;
        return;
      }
      w = res.comm;
    } else {
      w = world();
      const int original_rank = w.rank();
      if (original_rank == pre_kill_rank) abort_self();
      const auto res = recon.reconstruct(w);
      if (!res.repaired || res.exhausted) ++bad;
      if (res.mode != RecoveryMode::Repaired) ++bad;
      w = res.comm;
      if (w.rank() != original_rank) ++bad;  // survivors keep their rank
      if (original_rank == 0) root_attempts = res.attempts;
    }
    if (w.size() != world_size) ++bad;
    // All-to-root gather proves every rank (survivor and respawn) is
    // functional and sits at the right position.
    const int v = w.rank();
    std::vector<int> all(static_cast<size_t>(w.size()));
    if (gather(&v, 1, all.data(), 0, w) != kSuccess) ++bad;
    if (w.rank() == 0) {
      for (int i = 0; i < w.size(); ++i) {
        if (all[static_cast<size_t>(i)] != i) ++bad;
      }
    }
  });
}

LayoutConfig small_layout(Technique t) {
  LayoutConfig cfg;
  cfg.scheme = Scheme{6, 3};
  cfg.technique = t;
  cfg.procs_diagonal = 4;
  cfg.procs_lower = 2;
  cfg.procs_extra_upper = 2;
  cfg.procs_extra_lower = 1;
  return cfg;
}

AppConfig small_app(Technique t) {
  AppConfig cfg;
  cfg.layout = small_layout(t);
  cfg.timesteps = 24;
  cfg.checkpoints = 2;
  return cfg;
}

Runtime::Options app_opts() {
  Runtime::Options o;
  o.slots_per_host = 12;
  o.real_time_limit_sec = 120.0;
  return o;
}

}  // namespace

// --- kills at each recovery phase boundary ---------------------------------

TEST(ChaosReconstruct, KillDuringShrinkStillRepairs) {
  Runtime rt(opts());
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = "shrink", .victim = 1, .occurrence = 1});
  std::atomic<int> bad{0}, attempts{0};
  register_repair_app(rt, 6, /*pre_kill_rank=*/3, bad, attempts);
  rt.run("app", 6);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(chaos.kills_fired(), 1);
  EXPECT_GE(attempts.load(), 1);
}

TEST(ChaosReconstruct, KillDuringSpawnForcesRetry) {
  Runtime rt(opts());
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = "spawn", .victim = 2, .occurrence = 1});
  std::atomic<int> bad{0}, attempts{0};
  register_repair_app(rt, 6, /*pre_kill_rank=*/3, bad, attempts);
  rt.run("app", 6);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(chaos.kills_fired(), 1);
  // Rank 2 survives the shrink and dies at the spawn boundary, so the first
  // attempt's validation fails and a second attempt must run.
  EXPECT_GE(attempts.load(), 2);
}

TEST(ChaosReconstruct, KillChildBetweenSpawnAndMerge) {
  // World 6 = pids 0..5, so the first respawned child is pid 6.  Killing it
  // at its merge boundary orphans the first repair attempt; the retry
  // respawns a second child that must land on the failed rank.
  Runtime rt(opts());
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = "merge", .victim = 6, .occurrence = 1});
  std::atomic<int> bad{0}, attempts{0};
  register_repair_app(rt, 6, /*pre_kill_rank=*/3, bad, attempts);
  rt.run("app", 6);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(chaos.kills_fired(), 1);
  EXPECT_GE(attempts.load(), 2);
}

TEST(ChaosReconstruct, KillParentDuringOrderedSplit) {
  Runtime rt(opts());
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = "split", .victim = 4, .occurrence = 1});
  std::atomic<int> bad{0}, attempts{0};
  register_repair_app(rt, 6, /*pre_kill_rank=*/3, bad, attempts);
  rt.run("app", 6);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(chaos.kills_fired(), 1);
  EXPECT_GE(attempts.load(), 2);
}

TEST(ChaosReconstruct, SeedSweepConvergesAtEveryPhaseBoundary) {
  // Deterministic pseudo-random schedules across every hook point: whatever
  // the phase and victim, the reconstruction must converge to the original
  // size and rank order.
  const std::vector<std::string> phases{"shrink", "agree",      "spawn",
                                        "merge",  "spawn.done", "split"};
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Runtime rt(opts());
    ChaosInjector chaos(rt);
    for (const ChaosEvent& ev : ChaosInjector::random_plan(seed, 6, /*kills=*/1, phases)) {
      chaos.schedule(ev);
    }
    std::atomic<int> bad{0}, attempts{0};
    register_repair_app(rt, 6, /*pre_kill_rank=*/4, bad, attempts);
    rt.run("app", 6);
    EXPECT_EQ(bad.load(), 0) << "seed=" << seed;
    EXPECT_GE(attempts.load(), 1) << "seed=" << seed;
  }
}

// --- shrink-mode degradation ----------------------------------------------

TEST(ChaosDegraded, PlacementExhaustionFallsBackToShrink) {
  // Bounded cluster: 3 hosts x 2 slots, fully occupied by the 6-rank world.
  // A whole-host failure takes ranks 4 and 5 down and leaves nowhere to
  // respawn them, so the repair must degrade to the shrunken world.
  Runtime::Options o = opts(/*slots=*/2);
  o.max_hosts = 3;
  Runtime rt(o);
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = "agree", .victim = 5, .occurrence = 1, .fail_host = true});
  std::atomic<int> bad{0};
  std::atomic<int> degraded{0};
  rt.register_app("app", [&](const std::vector<std::string>& argv) {
    Reconstructor recon({"app", argv});
    if (!get_parent().is_null()) {
      ++bad;  // no replacement can ever be placed
      return;
    }
    Comm w = world();
    const int original_rank = w.rank();
    const auto res = recon.reconstruct(w);
    if (!res.repaired || res.exhausted) {
      ++bad;
      return;
    }
    if (res.mode == RecoveryMode::Degraded) ++degraded;
    if (res.failed_ranks != std::vector<int>({4, 5})) ++bad;
    w = res.comm;
    if (w.size() != 4) ++bad;
    if (w.rank() != original_rank) ++bad;  // shrink preserves rank order
    const int v = w.rank();
    std::vector<int> all(static_cast<size_t>(w.size()));
    if (gather(&v, 1, all.data(), 0, w) != kSuccess) ++bad;
    if (w.rank() == 0) {
      for (int i = 0; i < w.size(); ++i) {
        if (all[static_cast<size_t>(i)] != i) ++bad;
      }
    }
  });
  rt.run("app", 6);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(degraded.load(), 4);
  EXPECT_EQ(chaos.kills_fired(), 1);
}

TEST(FtAppDegraded, ContinuesOnShrunkenWorldAndCombines) {
  // Every host holds exactly one rank and the cluster cannot grow, so a
  // node failure is unrecoverable by respawn: the app must continue on the
  // shrunken world, idle the survivors of the lost grid, and combine the
  // remaining grids with GCP coefficients.
  AppConfig cfg = small_app(Technique::AlternateCombination);
  const Layout layout = build_layout(cfg.layout);
  Runtime::Options o;
  o.slots_per_host = 1;
  o.max_hosts = layout.total_procs;
  o.real_time_limit_sec = 120.0;
  Runtime rt(o);
  cfg.failures.fail_host_at_step[5] = 10;  // host 5 == rank 5 (grid 1)
  FtApp app(cfg);
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 1);
  EXPECT_DOUBLE_EQ(rt.get(keys::kReconMode, -1), 2.0);
  EXPECT_DOUBLE_EQ(rt.get(keys::kSurvivors, -1),
                   static_cast<double>(layout.total_procs - 1));
  EXPECT_GE(rt.get(keys::kRepairs, -1), 1.0);
  const double err = rt.get(keys::kErrorL1, -1);
  ASSERT_GE(err, 0.0);
  // Same bound as the simulated-loss AC runs: the GCP combination absorbs
  // the lost diagonal grid.
  EXPECT_LT(err, 0.2);
}

// --- checkpoint integrity under chaos --------------------------------------

TEST(FtAppChaos, KillDuringCheckpointWriteRollsBackGroup) {
  // Rank 5 dies entering its *second* checkpoint write, so its grid holds
  // generations (8) while the group mates also wrote (16).  The
  // group-consistent rollback must agree on step 8 — served from the mates'
  // previous generation — and the recompute makes CR recovery exact.
  Runtime rt1(app_opts());
  FtApp clean(small_app(Technique::CheckpointRestart));
  clean.launch(rt1);
  const double err_clean = rt1.get(keys::kErrorL1, -1);
  ASSERT_GE(err_clean, 0.0);

  Runtime rt(app_opts());
  ChaosInjector chaos(rt);
  chaos.schedule({.phase = "ckpt.write", .victim = 5, .occurrence = 2});
  FtApp app(small_app(Technique::CheckpointRestart));
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 1);
  EXPECT_EQ(chaos.kills_fired(), 1);
  EXPECT_DOUBLE_EQ(rt.get(keys::kRepairs, -1), 1.0);
  EXPECT_DOUBLE_EQ(rt.get(keys::kReconMode, -1), 1.0);
  EXPECT_NEAR(rt.get(keys::kErrorL1, -1), err_clean, 1e-12);
}

TEST(FtAppChaos, CorruptSnapshotFallsBackToPreviousGeneration) {
  Runtime rt1(app_opts());
  FtApp clean(small_app(Technique::CheckpointRestart));
  clean.launch(rt1);
  const double err_clean = rt1.get(keys::kErrorL1, -1);
  ASSERT_GE(err_clean, 0.0);

  // Rank 5 dies in the last interval (both checkpoint generations exist by
  // then); while the survivors run the repair, the newest snapshot of a
  // surviving group mate (grid 1, group rank 2 = world rank 6) is
  // corrupted.  read_latest must detect the damage, fall back to the
  // previous generation, and the group-minimum rollback keeps the grid
  // consistent — recovery stays exact.
  Runtime rt(app_opts());
  AppConfig cfg = small_app(Technique::CheckpointRestart);
  cfg.failures.kill_at_step[5] = 20;
  FtApp app(cfg);
  std::atomic<bool> corrupted{false};
  rt.set_chaos_hook([&](const char* phase, ftmpi::ProcId) {
    if (std::strcmp(phase, "shrink") == 0 && !corrupted.exchange(true)) {
      app.checkpoint_store().corrupt_latest(/*grid=*/1, /*rank=*/2);
    }
  });
  const int killed = app.launch(rt);
  EXPECT_EQ(killed, 1);
  EXPECT_TRUE(corrupted.load());
  EXPECT_GE(app.checkpoint_store().corrupt_detected(), 1);
  EXPECT_GE(app.checkpoint_store().fallback_reads(), 1);
  EXPECT_DOUBLE_EQ(rt.get(keys::kRepairs, -1), 1.0);
  EXPECT_NEAR(rt.get(keys::kErrorL1, -1), err_clean, 1e-12);
}

// --- CheckpointStore integrity units ---------------------------------------

TEST(CheckpointIntegrity, MemoryCorruptNewestFallsBackToPrev) {
  ftr::rec::CheckpointStore store;
  store.write(1, 0, 8, {1.0, 2.0, 3.0});
  store.write(1, 0, 16, {4.0, 5.0, 6.0});
  store.corrupt_latest(1, 0);
  const auto snap = store.read_latest(1, 0);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->step, 8);
  EXPECT_EQ(snap->data, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_GE(store.corrupt_detected(), 1);
  EXPECT_EQ(store.fallback_reads(), 1);
}

TEST(CheckpointIntegrity, MemorySingleCorruptGenerationMeansRecompute) {
  ftr::rec::CheckpointStore store;
  store.write(2, 1, 8, {7.0, 8.0});
  store.corrupt_latest(2, 1);
  EXPECT_FALSE(store.read_latest(2, 1).has_value());
  EXPECT_GE(store.corrupt_detected(), 1);
  EXPECT_EQ(store.fallback_reads(), 0);
}

TEST(CheckpointIntegrity, FileCorruptNewestFallsBackToPrev) {
  const std::string dir = ::testing::TempDir() + "ftr_ckpt_corrupt";
  ftr::rec::CheckpointStore store(dir);
  ASSERT_TRUE(store.file_backed());
  store.write(0, 0, 8, {1.5, 2.5});
  store.write(0, 0, 16, {3.5, 4.5});
  store.corrupt_latest(0, 0);
  const auto snap = store.read_latest(0, 0);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->step, 8);
  EXPECT_EQ(snap->data, (std::vector<double>{1.5, 2.5}));
  EXPECT_GE(store.corrupt_detected(), 1);
  EXPECT_EQ(store.fallback_reads(), 1);
}

TEST(CheckpointIntegrity, FileTruncatedSnapshotDetected) {
  const std::string dir = ::testing::TempDir() + "ftr_ckpt_torn";
  ftr::rec::CheckpointStore store(dir);
  store.write(0, 0, 8, {1.0});
  store.write(0, 0, 16, {2.0});
  // A torn write that somehow reached the current file: truncate it so the
  // payload no longer matches the header.
  std::filesystem::resize_file(store.latest_path(0, 0), 10);
  const auto snap = store.read_latest(0, 0);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->step, 8);
  EXPECT_GE(store.corrupt_detected(), 1);
  EXPECT_EQ(store.fallback_reads(), 1);
}

TEST(CheckpointIntegrity, ReadAtFindsExactGeneration) {
  for (const bool file_backed : {false, true}) {
    ftr::rec::CheckpointStore mem_store;
    ftr::rec::CheckpointStore file_store(::testing::TempDir() + "ftr_ckpt_read_at");
    ftr::rec::CheckpointStore& store = file_backed ? file_store : mem_store;
    store.write(3, 2, 8, {1.0, 2.0});
    store.write(3, 2, 16, {3.0, 4.0});
    const auto prev = store.read_at(3, 2, 8);
    ASSERT_TRUE(prev.has_value()) << "file_backed=" << file_backed;
    EXPECT_EQ(prev->step, 8);
    EXPECT_EQ(prev->data, (std::vector<double>{1.0, 2.0}));
    const auto newest = store.read_at(3, 2, 16);
    ASSERT_TRUE(newest.has_value());
    EXPECT_EQ(newest->step, 16);
    EXPECT_FALSE(store.read_at(3, 2, 12).has_value());  // never taken
  }
}
